package torture

import (
	"fmt"
	"strings"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/qtree"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

// This file holds the single-threaded half of the matrix: parse (text
// formats round-trip), eval (maintained results equal the naive oracle
// at every step), and error (every rejection is atomic and leaves the
// documented state behind).

// tortureSchema is the shared schema most scenarios run against; small
// domains make joins dense so result sets are non-trivial.
var tortureSchema = map[string]int{"E": 2, "S": 1, "T": 1}

// queryPool is the standard query pool: two core routes, the canonical
// non-q-hierarchical IVM route, and a forced-recompute audit twin of the
// star query.
type namedQuery struct {
	name  string
	text  string
	force dyncq.Strategy
}

var queryPool = []namedQuery{
	{"star", "Q(y) :- E(x,y), T(y)", dyncq.StrategyAuto},         // core
	{"src", "Q(x) :- E(x,y)", dyncq.StrategyAuto},                // core
	{"hard", "Q(x,y) :- S(x), E(x,y), T(y)", dyncq.StrategyAuto}, // ivm
	{"audit", "Q(y) :- E(x,y), T(y)", dyncq.StrategyRecompute},
}

// buildWorkspace registers the first k pool queries (all of them when
// k <= 0) in a fresh workspace and mirrors them into the oracle.
func buildWorkspace(opt dyncq.WorkspaceOptions, k int) (*dyncq.Workspace, *oracle, error) {
	ws := dyncq.NewWorkspace(opt)
	o := newOracle()
	pool := queryPool
	if k > 0 && k < len(pool) {
		pool = pool[:k]
	}
	for _, nq := range pool {
		q := mustParse(nq.text)
		if _, err := ws.RegisterQuery(nq.name, q, dyncq.Options{Force: nq.force}); err != nil {
			return nil, nil, fmt.Errorf("register %s: %w", nq.name, err)
		}
		o.register(nq.name, q)
	}
	return ws, o, nil
}

// ---- parse ----

func parseScenarios() []Scenario {
	return []Scenario{
		{
			Category: "parse", Name: "update-roundtrip",
			Brief: "FormatUpdate -> ParseUpdate is the identity over generated streams",
			Run: func(seed int64) error {
				cfg := workload.TortureConfig{Seed: seed, Domain: 500, Updates: 2000, PDelete: 0.4, ZipfS: 1.3, ZipfV: 1}
				for i, u := range cfg.Stream(tortureSchema) {
					back, err := dyncq.ParseUpdate(dyncq.FormatUpdate(u))
					if err != nil {
						return fmt.Errorf("update %d (%s): %v", i, u, err)
					}
					if back.Op != u.Op || back.Rel != u.Rel || !equalTuple(back.Tuple, u.Tuple) {
						return fmt.Errorf("update %d: %s round-tripped to %s", i, u, back)
					}
				}
				return nil
			},
		},
		{
			Category: "parse", Name: "query-roundtrip",
			Brief: "query String -> Parse preserves text and classification",
			Run: func(seed int64) error {
				rng := rngFor(seed, "query-roundtrip")
				for i := 0; i < 200; i++ {
					q := workload.RandomQHierarchical(rng, workload.DefaultQHOptions())
					back, err := cq.Parse(q.String())
					if err != nil {
						return fmt.Errorf("query %d (%s): %v", i, q, err)
					}
					if back.String() != q.String() {
						return fmt.Errorf("query %d: %s reparsed to %s", i, q, back)
					}
					if a, b := qtree.Classify(q).QHierarchical, qtree.Classify(back).QHierarchical; a != b {
						return fmt.Errorf("query %d: classification changed across reparse (%v vs %v)", i, a, b)
					}
				}
				return nil
			},
		},
		{
			Category: "parse", Name: "stream-reader",
			Brief: "StreamReader reproduces a formatted stream with exact line numbers",
			Run: func(seed int64) error {
				cfg := workload.TortureConfig{Seed: seed, Domain: 60, Updates: 500, PDelete: 0.3}
				stream := cfg.Stream(tortureSchema)
				var b strings.Builder
				rng := rngFor(seed, "stream-noise")
				wantLines := make([]int, len(stream))
				line := 0
				for i, u := range stream {
					for rng.Intn(3) == 0 { // interleave comments and blanks
						if rng.Intn(2) == 0 {
							b.WriteString("# comment noise\n")
						} else {
							b.WriteString("\n")
						}
						line++
					}
					b.WriteString(dyncq.FormatUpdate(u))
					b.WriteString("\n")
					line++
					wantLines[i] = line
				}
				sr := dyncq.NewStreamReader(strings.NewReader(b.String()))
				for i, u := range stream {
					got, gotLine, err := sr.Next()
					if err != nil {
						return fmt.Errorf("update %d: %v", i, err)
					}
					if got.Op != u.Op || got.Rel != u.Rel || !equalTuple(got.Tuple, u.Tuple) {
						return fmt.Errorf("update %d: read %s, want %s", i, got, u)
					}
					if gotLine != wantLines[i] {
						return fmt.Errorf("update %d: reported line %d, want %d", i, gotLine, wantLines[i])
					}
				}
				if _, _, err := sr.Next(); err == nil {
					return fmt.Errorf("reader yielded an update past the end of the stream")
				}
				return nil
			},
		},
	}
}

// ---- eval ----

// applyChecked routes one chunk through the workspace and the oracle and
// runs the full comparison.
func applyChecked(ws *dyncq.Workspace, o *oracle, chunk []dyndb.Update, where string) error {
	if _, err := ws.ApplyBatch(chunk); err != nil {
		return fmt.Errorf("%s: %v", where, err)
	}
	o.apply(chunk)
	return o.check(ws, where)
}

func evalScenarios() []Scenario {
	return []Scenario{
		{
			Category: "eval", Name: "star-oracle",
			Brief: "core-routed star query equals the oracle after every batch",
			Run: func(seed int64) error {
				ws, o, err := buildWorkspace(dyncq.WorkspaceOptions{}, 2)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 40, Updates: 1500, PDelete: 0.35, ZipfS: 1.4, ZipfV: 1}
				return replayChecked(ws, o, cfg.Stream(tortureSchema), 50)
			},
		},
		{
			Category: "eval", Name: "mixed-strategies-oracle",
			Brief: "core, IVM and recompute backends agree with the oracle on one shared stream",
			Run: func(seed int64) error {
				ws, o, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 30, Updates: 1200, PDelete: 0.4, ZipfS: 1.5, ZipfV: 2}
				return replayChecked(ws, o, cfg.Stream(tortureSchema), 64)
			},
		},
		{
			Category: "eval", Name: "zipf-flap-oracle",
			Brief: "hot-tuple insert/delete flapping, applied one update at a time",
			Run: func(seed int64) error {
				ws, o, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				// Tiny domain + high delete ratio: the same hot tuples flap
				// in and out, stressing delete paths and slab free lists.
				cfg := workload.TortureConfig{Seed: seed, Domain: 6, Updates: 600, PDelete: 0.5, ZipfS: 2, ZipfV: 1}
				for i, u := range cfg.Stream(tortureSchema) {
					if _, err := ws.Apply(u); err != nil {
						return fmt.Errorf("update %d (%s): %v", i, u, err)
					}
					o.apply([]dyndb.Update{u})
					if i%25 == 0 {
						if err := o.check(ws, fmt.Sprintf("update %d", i)); err != nil {
							return err
						}
					}
				}
				return o.check(ws, "final")
			},
		},
		{
			Category: "eval", Name: "batch-vs-single",
			Brief: "batched and per-update application converge to identical state",
			Run: func(seed int64) error {
				single, o1, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				batched, o2, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 25, Updates: 1000, PDelete: 0.4}
				stream := cfg.Stream(tortureSchema)
				for i, u := range stream {
					if _, err := single.Apply(u); err != nil {
						return fmt.Errorf("single update %d: %v", i, err)
					}
				}
				o1.apply(stream)
				if _, err := batched.ApplyBatched(stream, 128); err != nil {
					return fmt.Errorf("batched: %v", err)
				}
				o2.apply(stream)
				if err := o1.check(single, "single final"); err != nil {
					return err
				}
				if err := o2.check(batched, "batched final"); err != nil {
					return err
				}
				for _, nq := range queryPool {
					a, b := single.Handle(nq.name).Tuples(), batched.Handle(nq.name).Tuples()
					if err := sameTupleSet(a, b); err != nil {
						return fmt.Errorf("query %s: single vs batched: %w", nq.name, err)
					}
				}
				return nil
			},
		},
	}
}

// replayChecked applies the stream in chunks, checking the oracle after
// every chunk.
func replayChecked(ws *dyncq.Workspace, o *oracle, stream []dyndb.Update, chunk int) error {
	for from := 0; from < len(stream); from += chunk {
		to := from + chunk
		if to > len(stream) {
			to = len(stream)
		}
		if err := applyChecked(ws, o, stream[from:to], fmt.Sprintf("batch %d..%d", from, to)); err != nil {
			return err
		}
	}
	return nil
}

// ---- error ----

func errorScenarios() []Scenario {
	return []Scenario{
		{
			Category: "error", Name: "invalid-batch-atomic",
			Brief: "a bad command anywhere in a batch rejects it with zero state change",
			Run: func(seed int64) error {
				ws, o, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				rng := rngFor(seed, "inject")
				cfg := workload.TortureConfig{Seed: seed, Domain: 30, Updates: 900, PDelete: 0.3, ZipfS: 1.3, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				poison := []dyndb.Update{
					dyncq.Insert("E", 1),       // arity too small
					dyncq.Insert("T", 1, 2, 3), // arity too large
					dyncq.Delete("S", 7, 8),    // arity mismatch on delete
				}
				for from := 0; from < len(stream); from += 90 {
					to := from + 90
					if to > len(stream) {
						to = len(stream)
					}
					chunk := append([]dyndb.Update(nil), stream[from:to]...)
					// Inject one poison command at a random position: the
					// whole batch must be rejected atomically.
					bad := append([]dyndb.Update(nil), chunk...)
					at := rng.Intn(len(bad) + 1)
					bad = append(bad[:at], append([]dyndb.Update{poison[rng.Intn(len(poison))]}, bad[at:]...)...)
					versionBefore := ws.Version()
					if _, err := ws.ApplyBatch(bad); err == nil {
						return fmt.Errorf("batch %d: poisoned batch was accepted", from)
					}
					if ws.Version() != versionBefore {
						return fmt.Errorf("batch %d: rejected batch advanced the version", from)
					}
					if err := o.check(ws, fmt.Sprintf("after rejected batch %d", from)); err != nil {
						return err
					}
					// The clean batch must still apply on the same workspace.
					if err := applyChecked(ws, o, chunk, fmt.Sprintf("retry batch %d", from)); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Category: "error", Name: "failed-load-empty",
			Brief: "a failed Load leaves the empty database and a live pipeline behind",
			Run: func(seed int64) error {
				ws, o, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 30, Updates: 400, PDelete: 0.2}
				if err := replayChecked(ws, o, cfg.Stream(tortureSchema), 100); err != nil {
					return err
				}
				// A database whose E has the wrong arity: Load must fail and
				// leave the documented empty state, version advanced.
				bad := dyndb.New()
				if err := bad.EnsureRelation("E", 3); err != nil {
					return err
				}
				if _, err := bad.Insert("E", 1, 2, 3); err != nil {
					return err
				}
				versionBefore := ws.Version()
				if err := ws.Load(bad); err == nil {
					return fmt.Errorf("Load of arity-clashing database succeeded")
				}
				if ws.Version() != versionBefore+1 {
					return fmt.Errorf("failed Load advanced version by %d, want 1", ws.Version()-versionBefore)
				}
				o.clear()
				if err := o.check(ws, "after failed Load"); err != nil {
					return err
				}
				// The pipeline must still be live.
				cfg2 := workload.TortureConfig{Seed: seed + 1, Domain: 20, Updates: 300, PDelete: 0.3}
				return replayChecked(ws, o, cfg2.Stream(tortureSchema), 75)
			},
		},
		{
			Category: "error", Name: "malformed-stream",
			Brief: "malformed stream lines are rejected with line numbers; valid lines still apply",
			Run: func(seed int64) error {
				bad := []string{
					"+E(1,2) trailing",
					"++E(1,2)",
					"+-E(1,2)",
					"+E(1,",
					"+E(1,2",
					"+ (1,2)",
					"+E(a,2)", // int mode: strings rejected
					"+E()",
					"+E(1,,2)",
					"-",
				}
				for _, line := range bad {
					if u, err := dyncq.ParseUpdate(line); err == nil {
						return fmt.Errorf("malformed line %q parsed as %s", line, u)
					}
				}
				// A stream mixing good and bad lines: the reader must report
				// the bad line's number and keep going afterwards.
				text := "+E(1,2)\n# fine\n++T(1)\n+T(2)\n"
				sr := dyncq.NewStreamReader(strings.NewReader(text))
				if _, line, err := sr.Next(); err != nil || line != 1 {
					return fmt.Errorf("line 1: got line=%d err=%v", line, err)
				}
				_, badLine, err := sr.Next()
				if err == nil {
					return fmt.Errorf("malformed line 3 was accepted")
				}
				if badLine != 3 || !strings.Contains(err.Error(), "line 3") {
					return fmt.Errorf("error for line 3 does not name the line (line=%d): %v", badLine, err)
				}
				if u, line, err := sr.Next(); err != nil || line != 4 || u.Rel != "T" {
					return fmt.Errorf("line 4 after error: got %v line=%d err=%v", u, line, err)
				}
				return nil
			},
		},
	}
}
