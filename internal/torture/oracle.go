package torture

import (
	"fmt"
	"sort"

	"dyncq/internal/cq"
	"dyncq/internal/dyndb"
	"dyncq/internal/eval"
	"dyncq/pkg/dyncq"
)

// oracle is the naive reference implementation every eval-class scenario
// checks the engine against: a plain, unsharded, unindexed database plus
// brute-force eval.Evaluate answers. It shares no code with the
// maintenance structures under test (core item trees, IVM delta joins,
// the shared index pool), so agreement means the clever paths compute
// the semantics, not that two copies of one bug agree.
type oracle struct {
	db      *dyndb.Database
	queries map[string]*cq.Query
}

func newOracle() *oracle {
	return &oracle{db: dyndb.New(), queries: make(map[string]*cq.Query)}
}

func (o *oracle) register(name string, q *cq.Query) { o.queries[name] = q }
func (o *oracle) unregister(name string)            { delete(o.queries, name) }

// apply mirrors one committed workspace batch: set semantics, no-ops
// ignored. Callers only invoke it after the workspace accepted the same
// updates, so errors here mean the harness itself is broken.
func (o *oracle) apply(updates []dyndb.Update) {
	for _, u := range updates {
		if _, err := o.db.Apply(u); err != nil {
			panic(fmt.Sprintf("torture oracle: %s: %v", u, err))
		}
	}
}

// load mirrors Workspace.Load: the oracle database becomes a copy of db.
func (o *oracle) load(db *dyndb.Database) {
	o.db = db.Clone()
}

// clear mirrors a failed Load: the workspace contract leaves the empty
// database behind.
func (o *oracle) clear() { o.db = dyndb.New() }

// check compares every registered query's result in the workspace
// against the oracle's brute-force evaluation — count, answer bit, and
// the full result set — and then runs the workspace's own invariant
// sweep. where labels the step for failure messages.
func (o *oracle) check(ws *dyncq.Workspace, where string) error {
	for name, q := range o.queries {
		h := ws.Handle(name)
		if h == nil {
			return fmt.Errorf("%s: query %q registered in oracle but not in workspace", where, name)
		}
		want := eval.Evaluate(q, o.db)
		if got := h.Count(); got != uint64(want.Len()) {
			return fmt.Errorf("%s: query %q count %d, oracle %d", where, name, got, want.Len())
		}
		if got := h.Answer(); got != (want.Len() > 0) {
			return fmt.Errorf("%s: query %q answer %v, oracle %v", where, name, got, want.Len() > 0)
		}
		got := h.Tuples()
		if err := sameTupleSet(got, want.Tuples()); err != nil {
			return fmt.Errorf("%s: query %q result: %w", where, name, err)
		}
	}
	if got, want := ws.Cardinality(), o.db.Cardinality(); got != want {
		return fmt.Errorf("%s: store cardinality %d, oracle %d", where, got, want)
	}
	if err := ws.CheckInvariants(); err != nil {
		return fmt.Errorf("%s: %w", where, err)
	}
	return nil
}

// sameTupleSet compares two results as sets (enumeration order is only
// specified for the core backend, and only relative to itself).
func sameTupleSet(got, want [][]dyncq.Value) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d tuples, oracle has %d", len(got), len(want))
	}
	g := append([][]dyncq.Value(nil), got...)
	w := append([][]dyncq.Value(nil), want...)
	sortTuples(g)
	sortTuples(w)
	for i := range g {
		if !equalTuple(g[i], w[i]) {
			return fmt.Errorf("tuple %v, oracle has %v (both sorted)", g[i], w[i])
		}
	}
	return nil
}

func sortTuples(ts [][]dyncq.Value) {
	sort.Slice(ts, func(i, j int) bool { return lessTuple(ts[i], ts[j]) })
}

func lessTuple(a, b []dyncq.Value) bool {
	for k := range a {
		if k >= len(b) {
			return false
		}
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

func equalTuple(a, b []dyncq.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustParse parses a query the harness itself wrote; failure is a
// harness bug, not a scenario verdict.
func mustParse(text string) *cq.Query {
	q, err := cq.Parse(text)
	if err != nil {
		panic(fmt.Sprintf("torture: bad built-in query %q: %v", text, err))
	}
	return q
}
