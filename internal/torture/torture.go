// Package torture is the deterministic torture/soak harness: a category
// matrix of seeded adversarial scenarios — parse, eval, error,
// lifecycle, concurrency, fan-out — that exercises every layer of the
// engine (sharded store, shared index pool, slab-allocated core
// structures, interning, parallel workspace fan-out) simultaneously and
// checks each step against a naive reference oracle plus the engine's
// own invariants (Workspace.CheckInvariants: store bookkeeping, index
// epoch lockstep, index sanity).
//
// Design, in the style of the GCC torture suites and the Mangle engine
// torture spec: every scenario is a pure function of its seed — no
// network, no filesystem, no timing dependence in its verdict — so any
// failure anywhere (CI soak, a laptop) replays bit-identically from one
// `go test -run <case> -torture.seed=N` line. Scenarios are sized to
// run in well under a second each; the soak entry point scales coverage
// by running more seeds, never by growing a single case.
package torture

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Scenario is one named, seeded torture case. Run must be deterministic
// in seed: it builds its own workloads from the seed and returns nil on
// success or an error describing the first violated check.
type Scenario struct {
	// Category groups the scenario in the matrix: parse, eval, error,
	// lifecycle, concurrency, fanout, snapshot, or server.
	Category string
	// Name identifies the scenario inside its category (no spaces, so
	// `go test -run` selectors match it verbatim).
	Name string
	// Brief is the one-line description printed by listings.
	Brief string
	// Run executes the scenario with the given seed.
	Run func(seed int64) error
}

// Categories lists the matrix's categories in canonical order.
func Categories() []string {
	return []string{"parse", "eval", "error", "lifecycle", "concurrency", "fanout", "snapshot", "server"}
}

// All returns every scenario of the matrix, grouped by category in
// canonical order. The slice is freshly allocated; callers may filter it.
func All() []Scenario {
	var out []Scenario
	out = append(out, parseScenarios()...)
	out = append(out, evalScenarios()...)
	out = append(out, errorScenarios()...)
	out = append(out, lifecycleScenarios()...)
	out = append(out, concurrencyScenarios()...)
	out = append(out, fanoutScenarios()...)
	out = append(out, snapshotScenarios()...)
	out = append(out, serverScenarios()...)
	return out
}

// ByCategory returns the scenarios of one category (empty for an
// unknown category).
func ByCategory(cat string) []Scenario {
	var out []Scenario
	for _, sc := range All() {
		if sc.Category == cat {
			out = append(out, sc)
		}
	}
	return out
}

// ReproLine is the exact command reproducing one scenario run — the
// line every failure report carries, and the contract the failure-seed
// CI artifact is built on.
func ReproLine(sc Scenario, seed int64) string {
	return fmt.Sprintf("go test ./internal/torture -race -run 'TestTorture/%s/%s$' -torture.seed=%d",
		sc.Category, sc.Name, seed)
}

// Failure records one failed scenario run of a soak.
type Failure struct {
	Scenario Scenario
	Seed     int64
	Err      error
}

// Repro returns the reproduction command for the failure.
func (f Failure) Repro() string { return ReproLine(f.Scenario, f.Seed) }

// Soak runs the scenarios in rounds — round r runs every scenario with
// seed baseSeed+r — until the time budget is spent. Round 0 always
// completes, so a zero or tiny budget still covers the whole matrix
// once. A nil log discards progress lines. Failures are collected, not
// fatal: one bad seed must not mask another category's break in the
// same nightly run.
func Soak(scenarios []Scenario, baseSeed int64, budget time.Duration, log func(format string, args ...any)) []Failure {
	if log == nil {
		log = func(string, ...any) {}
	}
	start := time.Now()
	var failures []Failure
	runs := 0
	for round := 0; ; round++ {
		seed := baseSeed + int64(round)
		for _, sc := range scenarios {
			if round > 0 && time.Since(start) > budget {
				log("soak: budget spent after %d runs in %d round(s), %d failure(s)", runs, round, len(failures))
				return failures
			}
			runs++
			if err := sc.Run(seed); err != nil {
				failures = append(failures, Failure{Scenario: sc, Seed: seed, Err: err})
				log("FAIL %s/%s seed=%d: %v\n  repro: %s", sc.Category, sc.Name, seed, err, ReproLine(sc, seed))
			}
		}
		if round == 0 && budget <= 0 {
			log("soak: matrix completed once (%d runs), %d failure(s)", runs, len(failures))
			return failures
		}
		log("soak: round %d done (%d runs, %d failure(s), %s elapsed)", round, runs, len(failures), time.Since(start).Round(time.Millisecond))
	}
}

// rng derives an independent random stream for one purpose of a
// scenario: the salt is folded into the seed so two generators inside
// one scenario never mirror each other.
func rngFor(seed int64, salt string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", salt, seed)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
