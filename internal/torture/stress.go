package torture

import (
	"fmt"
	"sync"

	"dyncq/internal/dyndb"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

// This file holds the stateful half of the matrix: lifecycle (the
// workspace survives register/unregister churn and Load cycles),
// concurrency (readers race writers under -race), and fanout (results
// are independent of the worker count and store writes are independent
// of the number of registered queries).

// ---- lifecycle ----

func lifecycleScenarios() []Scenario {
	return []Scenario{
		{
			Category: "lifecycle", Name: "register-churn",
			Brief: "register/unregister churn interleaved with updates keeps every live query exact",
			Run: func(seed int64) error {
				ws := dyncq.NewWorkspace(dyncq.WorkspaceOptions{})
				o := newOracle()
				rng := rngFor(seed, "churn")
				plan := workload.ChurnPlan(rng, len(queryPool), 40, 0.55)
				cfg := workload.TortureConfig{Seed: seed, Domain: 25, Updates: 40 * 30, PDelete: 0.35, ZipfS: 1.3, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				for i, ev := range plan {
					nq := queryPool[ev.Pool]
					if ev.Unregister {
						if !ws.Unregister(ev.Name) {
							return fmt.Errorf("event %d: Unregister(%s) found no query", i, ev.Name)
						}
						o.unregister(ev.Name)
					} else {
						if _, err := ws.RegisterQuery(ev.Name, mustParse(nq.text), dyncq.Options{Force: nq.force}); err != nil {
							return fmt.Errorf("event %d: register %s: %v", i, ev.Name, err)
						}
						o.register(ev.Name, mustParse(nq.text))
					}
					// A freshly registered query must already represent the
					// current database (preprocessing on registration).
					if err := o.check(ws, fmt.Sprintf("event %d (%s %s)", i, opName(ev), ev.Name)); err != nil {
						return err
					}
					chunk := stream[i*30 : (i+1)*30]
					if err := applyChecked(ws, o, chunk, fmt.Sprintf("after event %d", i)); err != nil {
						return err
					}
				}
				return nil
			},
		},
		{
			Category: "lifecycle", Name: "load-cycles",
			Brief: "repeated Load cycles reset every query to exactly the loaded database",
			Run: func(seed int64) error {
				ws, o, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 30, Updates: 300, PDelete: 0.3}
				for cycle := 0; cycle < 4; cycle++ {
					db := workload.TortureConfig{Seed: seed + int64(cycle), Domain: 20, ZipfS: 1.2, ZipfV: 1}.Database(tortureSchema, 150)
					versionBefore := ws.Version()
					if err := ws.Load(db); err != nil {
						return fmt.Errorf("cycle %d: Load: %v", cycle, err)
					}
					if ws.Version() != versionBefore+1 {
						return fmt.Errorf("cycle %d: Load advanced version by %d, want 1", cycle, ws.Version()-versionBefore)
					}
					o.load(db)
					if err := o.check(ws, fmt.Sprintf("cycle %d after Load", cycle)); err != nil {
						return err
					}
					if err := replayChecked(ws, o, cfg.Stream(tortureSchema), 75); err != nil {
						return fmt.Errorf("cycle %d: %w", cycle, err)
					}
				}
				return nil
			},
		},
		{
			Category: "lifecycle", Name: "version-lockstep",
			Brief: "versions advance exactly once per effective commit; no-op batches do not advance",
			Run: func(seed int64) error {
				ws, o, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 20, Updates: 800, PDelete: 0.4}
				stream := cfg.Stream(tortureSchema)
				for from := 0; from < len(stream); from += 40 {
					to := from + 40
					if to > len(stream) {
						to = len(stream)
					}
					chunk := stream[from:to]
					versionBefore := ws.Version()
					applied, err := ws.ApplyBatch(chunk)
					if err != nil {
						return fmt.Errorf("batch %d: %v", from, err)
					}
					delta := ws.Version() - versionBefore
					if applied > 0 && delta != 1 {
						return fmt.Errorf("batch %d: %d effective commands advanced version by %d, want 1", from, applied, delta)
					}
					if applied == 0 && delta != 0 {
						return fmt.Errorf("batch %d: no-op batch advanced version by %d", from, delta)
					}
					// Replaying the very same chunk must be a pure no-op
					// under set semantics... except deletions of tuples the
					// first application removed stay no-ops and insertions it
					// added are now present — so the coalesced net effect of
					// an idempotent replay is empty only for insert-only
					// chunks. Instead assert the cheap universal invariant:
					// every handle reports the workspace version.
					for _, h := range ws.Handles() {
						if h.Version() != ws.Version() {
							return fmt.Errorf("batch %d: handle %s at version %d, workspace at %d", from, h.Name(), h.Version(), ws.Version())
						}
					}
					o.apply(chunk)
					if err := o.check(ws, fmt.Sprintf("batch %d", from)); err != nil {
						return err
					}
				}
				// An explicitly empty batch and a pure no-op batch: neither
				// advances anything.
				for name, noop := range map[string][]dyndb.Update{
					"empty batch": {},
					"no-op batch": {dyncq.Delete("E", -1, -1), dyncq.Delete("T", -9)},
				} {
					versionBefore, epochBefore := ws.Version(), ws.StoreEpoch()
					if _, err := ws.ApplyBatch(noop); err != nil {
						return fmt.Errorf("%s: %v", name, err)
					}
					if ws.Version() != versionBefore {
						return fmt.Errorf("%s advanced the version", name)
					}
					if ws.StoreEpoch() != epochBefore {
						return fmt.Errorf("%s advanced the store epoch", name)
					}
				}
				return o.check(ws, "final")
			},
		},
	}
}

func opName(ev workload.ChurnEvent) string {
	if ev.Unregister {
		return "unregister"
	}
	return "register"
}

// ---- concurrency ----

// The concurrency scenarios exist to give the race detector material:
// their correctness checks are deterministic in the seed, but the
// interleavings they provoke are scheduled by the runtime. Each runs
// writers against concurrent readers and fails on any torn read a
// snapshot should have made impossible.

func concurrencyScenarios() []Scenario {
	return []Scenario{
		{
			Category: "concurrency", Name: "view-readers",
			Brief: "View snapshots stay internally consistent while batches commit",
			Run: func(seed int64) error {
				ws, _, err := buildWorkspace(dyncq.WorkspaceOptions{Workers: 4}, 0)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 30, Updates: 3000, PDelete: 0.35, ZipfS: 1.3, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				stop := make(chan struct{})
				errs := make(chan error, 8)
				var wg sync.WaitGroup
				for r := 0; r < 4; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							select {
							case <-stop:
								return
							default:
							}
							ws.View(func(v *dyncq.WorkspaceView) {
								// Within one view: Count, Answer, and the
								// enumerated set must describe one state.
								for _, nq := range queryPool {
									count := v.Count(nq.name)
									if v.Answer(nq.name) != (count > 0) {
										errs <- fmt.Errorf("view: query %s answer disagrees with count %d", nq.name, count)
										return
									}
									if got := uint64(len(v.Tuples(nq.name))); got != count {
										errs <- fmt.Errorf("view: query %s enumerated %d tuples, count says %d", nq.name, got, count)
										return
									}
								}
								if before, after := v.Version(), v.Version(); before != after {
									errs <- fmt.Errorf("view: version moved %d -> %d inside one view", before, after)
								}
							})
						}
					}()
				}
				var applyErr error
				for from := 0; from < len(stream) && applyErr == nil; from += 100 {
					to := from + 100
					if to > len(stream) {
						to = len(stream)
					}
					if _, err := ws.ApplyBatch(stream[from:to]); err != nil {
						applyErr = fmt.Errorf("batch %d: %v", from, err)
					}
				}
				close(stop)
				wg.Wait()
				close(errs)
				if applyErr != nil {
					return applyErr
				}
				for err := range errs {
					if err != nil {
						return err
					}
				}
				return ws.CheckInvariants()
			},
		},
		{
			Category: "concurrency", Name: "churn-under-load",
			Brief: "register/unregister races batch application without corrupting either",
			Run: func(seed int64) error {
				ws, _, err := buildWorkspace(dyncq.WorkspaceOptions{Workers: 2}, 2)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 25, Updates: 2000, PDelete: 0.35, ZipfS: 1.4, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				errs := make(chan error, 2)
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Churn the second half of the pool (the first half stays
					// registered so the writer always fans out to >= 2 queries).
					for round := 0; round < 30; round++ {
						for _, nq := range queryPool[2:] {
							name := fmt.Sprintf("%s-churn", nq.name)
							if _, err := ws.RegisterQuery(name, mustParse(nq.text), dyncq.Options{Force: nq.force}); err != nil {
								errs <- fmt.Errorf("churn round %d: register %s: %v", round, name, err)
								return
							}
							// The freshly registered handle must answer for
							// some committed state without tearing.
							h := ws.Handle(name)
							if got, n := h.Answer(), h.Count(); got != (n > 0) {
								errs <- fmt.Errorf("churn round %d: %s answer/count torn (%v vs %d)", round, name, got, n)
								return
							}
						}
						for _, nq := range queryPool[2:] {
							name := fmt.Sprintf("%s-churn", nq.name)
							if !ws.Unregister(name) {
								errs <- fmt.Errorf("churn round %d: %s vanished", round, name)
								return
							}
						}
					}
				}()
				var applyErr error
				for from := 0; from < len(stream) && applyErr == nil; from += 50 {
					to := from + 50
					if to > len(stream) {
						to = len(stream)
					}
					if _, err := ws.ApplyBatch(stream[from:to]); err != nil {
						applyErr = fmt.Errorf("batch %d: %v", from, err)
					}
				}
				wg.Wait()
				close(errs)
				if applyErr != nil {
					return applyErr
				}
				for err := range errs {
					if err != nil {
						return err
					}
				}
				// Settle: the survivors must equal a from-scratch oracle.
				o := newOracle()
				for _, nq := range queryPool[:2] {
					o.register(nq.name, mustParse(nq.text))
				}
				o.apply(stream)
				return o.check(ws, "after churn settles")
			},
		},
		{
			Category: "concurrency", Name: "handle-readers",
			Brief: "latest-state handle reads race parallel fan-out without tearing",
			Run: func(seed int64) error {
				ws, _, err := buildWorkspace(dyncq.WorkspaceOptions{Workers: 4}, 0)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 30, Updates: 2500, PDelete: 0.4, ZipfS: 1.3, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				stop := make(chan struct{})
				errs := make(chan error, 8)
				var wg sync.WaitGroup
				for _, nq := range queryPool {
					wg.Add(1)
					go func(name string) {
						defer wg.Done()
						h := ws.Handle(name)
						for {
							select {
							case <-stop:
								return
							default:
							}
							// Each individual read must be internally sane;
							// Count/Enumerate agreement across two calls is
							// View's job, not Handle's.
							n := 0
							h.Enumerate(func(tuple []dyncq.Value) bool {
								if len(tuple) == 0 {
									errs <- fmt.Errorf("query %s enumerated an empty tuple", name)
									return false
								}
								n++
								return n < 1<<16
							})
							_ = h.Answer()
							_ = h.Count()
							_ = h.Cardinality()
						}
					}(nq.name)
				}
				var applyErr error
				for from := 0; from < len(stream) && applyErr == nil; from += 64 {
					to := from + 64
					if to > len(stream) {
						to = len(stream)
					}
					if _, err := ws.ApplyBatch(stream[from:to]); err != nil {
						applyErr = fmt.Errorf("batch %d: %v", from, err)
					}
				}
				close(stop)
				wg.Wait()
				close(errs)
				if applyErr != nil {
					return applyErr
				}
				for err := range errs {
					if err != nil {
						return err
					}
				}
				o := newOracle()
				for _, nq := range queryPool {
					o.register(nq.name, mustParse(nq.text))
				}
				o.apply(stream)
				return o.check(ws, "after readers drain")
			},
		},
	}
}

// ---- fanout ----

// wideQueryPool returns k named queries cycling through the standard
// pool — the K>=64 fan-out population. Core queries pin Shards so the
// canonical enumeration order is identical whatever the worker count.
func wideQueryPool(k int) []namedQuery {
	out := make([]namedQuery, k)
	for i := range out {
		base := queryPool[i%len(queryPool)]
		out[i] = namedQuery{name: fmt.Sprintf("q%03d-%s", i, base.name), text: base.text, force: base.force}
	}
	return out
}

func registerWide(ws *dyncq.Workspace, pool []namedQuery, shards int) error {
	for _, nq := range pool {
		if _, err := ws.RegisterQuery(nq.name, mustParse(nq.text), dyncq.Options{Force: nq.force, Shards: shards}); err != nil {
			return fmt.Errorf("register %s: %w", nq.name, err)
		}
	}
	return nil
}

func fanoutScenarios() []Scenario {
	return []Scenario{
		{
			Category: "fanout", Name: "k64-worker-identical",
			Brief: "64 live queries: results are byte-identical across worker counts",
			Run: func(seed int64) error {
				const k = 64
				pool := wideQueryPool(k)
				cfg := workload.TortureConfig{Seed: seed, Domain: 40, Updates: 1200, PDelete: 0.35, ZipfS: 1.3, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				// Same store shards and same core engine shards everywhere:
				// only the worker count varies, so any divergence is a
				// scheduling bug, not a layout difference.
				build := func(workers int) (*dyncq.Workspace, error) {
					ws := dyncq.NewWorkspace(dyncq.WorkspaceOptions{Workers: workers, StoreShards: 8})
					if err := registerWide(ws, pool, 4); err != nil {
						return nil, err
					}
					_, err := ws.ApplyBatched(stream, 150)
					return ws, err
				}
				solo, err := build(1)
				if err != nil {
					return fmt.Errorf("workers=1: %v", err)
				}
				for _, workers := range []int{2, 4} {
					par, err := build(workers)
					if err != nil {
						return fmt.Errorf("workers=%d: %v", workers, err)
					}
					for _, nq := range pool {
						a, b := solo.Handle(nq.name).Tuples(), par.Handle(nq.name).Tuples()
						if solo.Handle(nq.name).Strategy() == dyncq.StrategyCore {
							// Core order is canonical for a fixed shard count:
							// demand byte-identical enumeration, not just set
							// equality.
							if err := sameTupleSeq(a, b); err != nil {
								return fmt.Errorf("workers=%d: query %s order diverged: %w", workers, nq.name, err)
							}
						} else if err := sameTupleSet(a, b); err != nil {
							return fmt.Errorf("workers=%d: query %s: %w", workers, nq.name, err)
						}
					}
					if err := par.CheckInvariants(); err != nil {
						return fmt.Errorf("workers=%d: %v", workers, err)
					}
				}
				return solo.CheckInvariants()
			},
		},
		{
			Category: "fanout", Name: "store-writes-independent-of-k",
			Brief: "store mutations and index rebuilds are independent of the number of live queries",
			Run: func(seed int64) error {
				cfg := workload.TortureConfig{Seed: seed, Domain: 35, Updates: 1000, PDelete: 0.35, ZipfS: 1.2, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				run := func(k int) (*dyncq.Workspace, error) {
					ws := dyncq.NewWorkspace(dyncq.WorkspaceOptions{})
					if err := registerWide(ws, wideQueryPool(k), 0); err != nil {
						return nil, err
					}
					_, err := ws.ApplyBatched(stream, 125)
					return ws, err
				}
				narrow, err := run(1)
				if err != nil {
					return fmt.Errorf("k=1: %v", err)
				}
				wide, err := run(64)
				if err != nil {
					return fmt.Errorf("k=64: %v", err)
				}
				if a, b := narrow.StoreMutations(), wide.StoreMutations(); a != b {
					return fmt.Errorf("store mutations depend on K: %d with one query, %d with 64", a, b)
				}
				for name, ws := range map[string]*dyncq.Workspace{"k=1": narrow, "k=64": wide} {
					if rb := ws.Parallelism().IndexRebuilds; rb != 0 {
						return fmt.Errorf("%s: %d unexpected shared-index rebuilds", name, rb)
					}
					if err := ws.CheckInvariants(); err != nil {
						return fmt.Errorf("%s: %v", name, err)
					}
				}
				return nil
			},
		},
		{
			Category: "fanout", Name: "view-during-parallel-fanout",
			Brief: "views pinned during parallel fan-out stay on one committed version",
			Run: func(seed int64) error {
				const k = 64
				ws := dyncq.NewWorkspace(dyncq.WorkspaceOptions{Workers: 4})
				if err := registerWide(ws, wideQueryPool(k), 0); err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 30, Updates: 2000, PDelete: 0.4, ZipfS: 1.4, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				stop := make(chan struct{})
				errs := make(chan error, 4)
				var wg sync.WaitGroup
				for r := 0; r < 2; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						names := []string{"q000-star", "q002-hard", "q003-audit"}
						for {
							select {
							case <-stop:
								return
							default:
							}
							ws.View(func(v *dyncq.WorkspaceView) {
								version := v.Version()
								card := v.Cardinality()
								for _, name := range names {
									if got := uint64(len(v.Tuples(name))); got != v.Count(name) {
										errs <- fmt.Errorf("view at version %d: query %s tuples/count torn", version, name)
										return
									}
								}
								if v.Version() != version || v.Cardinality() != card {
									errs <- fmt.Errorf("view state moved: version %d -> %d", version, v.Version())
								}
							})
						}
					}()
				}
				var applyErr error
				for from := 0; from < len(stream) && applyErr == nil; from += 80 {
					to := from + 80
					if to > len(stream) {
						to = len(stream)
					}
					if _, err := ws.ApplyBatch(stream[from:to]); err != nil {
						applyErr = fmt.Errorf("batch %d: %v", from, err)
					}
				}
				close(stop)
				wg.Wait()
				close(errs)
				if applyErr != nil {
					return applyErr
				}
				for err := range errs {
					if err != nil {
						return err
					}
				}
				return ws.CheckInvariants()
			},
		},
	}
}

// sameTupleSeq demands exact, order-sensitive equality — the contract
// core enumeration gives for a fixed shard count.
func sameTupleSeq(got, want [][]dyncq.Value) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if !equalTuple(got[i], want[i]) {
			return fmt.Errorf("position %d: %v, want %v", i, got[i], want[i])
		}
	}
	return nil
}
