package torture

import (
	"fmt"

	"dyncq/internal/eval"
	"dyncq/internal/workload"
	"dyncq/pkg/dyncq"
)

// This file is the snapshot category: the MVCC read path under churn.
// The snapshot cache makes pins O(1) by SHARING one buffer across every
// reader at a version and advancing it in place of the handle's cache
// slot on commit — so the properties worth torturing are (a) a pinned
// snapshot is frozen forever: byte-identical at the end of the stream
// to the moment it was pinned, and to an oracle evaluation at that
// version, no matter how many commits advanced the cache underneath;
// and (b) register/unregister/evict churn never lets a stale buffer
// leak into a later pin.

// pinnedRecord freezes everything a pin promised: the shared snapshot
// itself plus a deep copy of what it contained (and what the oracle
// said) at pin time.
type pinnedRecord struct {
	name    string
	batch   int
	snap    *dyncq.QuerySnapshot
	version uint64
	rows    [][]dyncq.Value // deep copy at pin time
	oracle  [][]dyncq.Value // brute-force result at pin time
}

func deepCopyRows(rows [][]dyncq.Value) [][]dyncq.Value {
	out := make([][]dyncq.Value, len(rows))
	for i, r := range rows {
		out[i] = append([]dyncq.Value(nil), r...)
	}
	return out
}

func snapshotScenarios() []Scenario {
	return []Scenario{
		{
			Category: "snapshot", Name: "pinned-across-commits",
			Brief: "pinned snapshots stay byte-identical to pin-time state and oracle while the cache advances",
			Run: func(seed int64) error {
				ws, o, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				// Capture on half the pool: both advance paths (delta
				// patch and re-enumerate) run in the same stream.
				for _, nq := range queryPool[:2] {
					if err := ws.CaptureDeltas(nq.name, func(dyncq.DeltaEvent) {}); err != nil {
						return err
					}
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 24, Updates: 1200, PDelete: 0.35, ZipfS: 1.2, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				rng := rngFor(seed, "snapshot-pins")
				var pinned []pinnedRecord
				const batchSize = 60
				for b := 0; b*batchSize < len(stream); b++ {
					lo, hi := b*batchSize, (b+1)*batchSize
					if hi > len(stream) {
						hi = len(stream)
					}
					if _, err := ws.ApplyBatch(stream[lo:hi]); err != nil {
						return fmt.Errorf("batch %d: %v", b, err)
					}
					o.apply(stream[lo:hi])
					for _, nq := range queryPool {
						h := ws.Handle(nq.name)
						s := h.Snapshot() // keeps every cache demanded → advancing
						if s.Version() != ws.Version() {
							return fmt.Errorf("batch %d: pin of %s at version %d, workspace at %d",
								b, nq.name, s.Version(), ws.Version())
						}
						if rng.Intn(4) == 0 {
							pinned = append(pinned, pinnedRecord{
								name: nq.name, batch: b, snap: s, version: s.Version(),
								rows:   deepCopyRows(s.Tuples()),
								oracle: deepCopyRows(eval.Evaluate(o.queries[nq.name], o.db).Tuples()),
							})
						}
					}
					if b%5 == 0 {
						if err := o.check(ws, fmt.Sprintf("batch %d", b)); err != nil {
							return err
						}
					}
				}
				// End of stream: every pinned snapshot must still read
				// exactly as it did at pin time, and match the oracle's
				// pin-time result as a set.
				for _, p := range pinned {
					if p.snap.Version() != p.version {
						return fmt.Errorf("pin %s@batch%d: version mutated %d -> %d",
							p.name, p.batch, p.version, p.snap.Version())
					}
					now := p.snap.Tuples()
					if len(now) != len(p.rows) {
						return fmt.Errorf("pin %s@batch%d: length mutated %d -> %d",
							p.name, p.batch, len(p.rows), len(now))
					}
					for i := range now {
						if !equalTuple(now[i], p.rows[i]) {
							return fmt.Errorf("pin %s@batch%d: row %d mutated %v -> %v",
								p.name, p.batch, i, p.rows[i], now[i])
						}
					}
					if err := sameTupleSet(now, p.oracle); err != nil {
						return fmt.Errorf("pin %s@batch%d vs oracle at pin time: %w", p.name, p.batch, err)
					}
				}
				// The pins above hit the advanced cache: re-pinning every
				// batch must have been served without re-materialising
				// each time.
				for _, nq := range queryPool {
					st := ws.Handle(nq.name).SnapshotCacheStats()
					if st.Patched+st.Rebuilt == 0 {
						return fmt.Errorf("%s: cache never advanced (%+v)", nq.name, st)
					}
				}
				return o.check(ws, "end of stream")
			},
		},
		{
			Category: "snapshot", Name: "register-churn",
			Brief: "unregister/re-register and eviction churn never serve a stale snapshot",
			Run: func(seed int64) error {
				ws, o, err := buildWorkspace(dyncq.WorkspaceOptions{}, 0)
				if err != nil {
					return err
				}
				cfg := workload.TortureConfig{Seed: seed, Domain: 20, Updates: 900, PDelete: 0.3, ZipfS: 1.1, ZipfV: 1}
				stream := cfg.Stream(tortureSchema)
				rng := rngFor(seed, "snapshot-churn")
				// churn flips between two different queries under ONE
				// name; a stale cache would surface as the wrong result
				// set after a flip.
				churnTexts := []string{"Q(x) :- S(x), E(x,y)", "Q(y) :- T(y), E(x,y)"}
				churnOn := 0
				if _, err := ws.RegisterQuery("churn", mustParse(churnTexts[churnOn]), dyncq.Options{}); err != nil {
					return err
				}
				o.register("churn", mustParse(churnTexts[churnOn]))
				var held []*dyncq.QuerySnapshot // old-generation pins kept across flips
				const batchSize = 45
				for b := 0; b*batchSize < len(stream); b++ {
					lo, hi := b*batchSize, (b+1)*batchSize
					if hi > len(stream) {
						hi = len(stream)
					}
					if _, err := ws.ApplyBatch(stream[lo:hi]); err != nil {
						return fmt.Errorf("batch %d: %v", b, err)
					}
					o.apply(stream[lo:hi])
					h := ws.Handle("churn")
					s := h.Snapshot()
					want := eval.Evaluate(o.queries["churn"], o.db)
					if err := sameTupleSet(s.Tuples(), want.Tuples()); err != nil {
						return fmt.Errorf("batch %d (generation %d): churn snapshot: %w", b, churnOn, err)
					}
					switch rng.Intn(3) {
					case 0: // flip the registration under the same name
						held = append(held, s)
						wantOld := deepCopyRows(s.Tuples())
						if !ws.Unregister("churn") {
							return fmt.Errorf("batch %d: unregister failed", b)
						}
						o.unregister("churn")
						churnOn = 1 - churnOn
						if _, err := ws.RegisterQuery("churn", mustParse(churnTexts[churnOn]), dyncq.Options{}); err != nil {
							return fmt.Errorf("batch %d: re-register: %v", b, err)
						}
						o.register("churn", mustParse(churnTexts[churnOn]))
						// The fresh handle pins the NEW query's result…
						h2 := ws.Handle("churn")
						want2 := eval.Evaluate(o.queries["churn"], o.db)
						if err := sameTupleSet(h2.Snapshot().Tuples(), want2.Tuples()); err != nil {
							return fmt.Errorf("batch %d: re-registered churn: %w", b, err)
						}
						// …while the pre-flip pin still reads its frozen rows.
						now := s.Tuples()
						for i := range now {
							if !equalTuple(now[i], wantOld[i]) {
								return fmt.Errorf("batch %d: pre-flip pin mutated at row %d", b, i)
							}
						}
					case 1: // evict: the next pin re-materialises correctly
						h.EvictSnapshot()
						if err := sameTupleSet(h.Snapshot().Tuples(), want.Tuples()); err != nil {
							return fmt.Errorf("batch %d: post-evict pin: %w", b, err)
						}
					}
					if b%6 == 0 {
						if err := o.check(ws, fmt.Sprintf("batch %d", b)); err != nil {
							return err
						}
					}
				}
				if len(held) == 0 {
					return fmt.Errorf("churn never flipped (harness rng broken?)")
				}
				return o.check(ws, "end of stream")
			},
		},
	}
}
